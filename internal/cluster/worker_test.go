package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/estimator"
	"repro/internal/topology"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// workerClient pairs a live worker with a wire client against it.
func workerClient(t *testing.T, top *topology.Topology, walDir string) (*Worker, *client, func()) {
	t.Helper()
	wk := NewWorker(WorkerConfig{Topology: top, WALDir: walDir, Logger: discardLogger()})
	ts := httptest.NewServer(wk.Handler())
	return wk, &client{base: ts.URL, hc: ts.Client()}, func() {
		ts.Close()
		wk.Close()
	}
}

func testAssignRequest(top *topology.Topology, shards []int, window int) *AssignRequest {
	settings, err := estimator.Apply(testSolverOpts()...)
	if err != nil {
		panic(err)
	}
	return &AssignRequest{
		Fingerprint: Fingerprint(top),
		WorkerID:    "w0",
		Shards:      shards,
		WindowSize:  window,
		Solver:      settings,
	}
}

// wantCode asserts err is a *WireError with the given code.
func wantCode(t *testing.T, err error, code string) *WireError {
	t.Helper()
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("got %v, want wire error %s", err, code)
	}
	if we.Code != code {
		t.Fatalf("got code %s (%s), want %s", we.Code, we.Message, code)
	}
	return we
}

// randomIntervals builds n wire intervals over the topology's paths.
func randomIntervals(top *topology.Topology, n int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, n)
	for i := range out {
		var iv []int
		for p := 0; p < top.NumPaths(); p++ {
			if rng.Float64() < 0.15 {
				iv = append(iv, p)
			}
		}
		out[i] = iv
	}
	return out
}

func seqOf(t *testing.T, acks []ShardSeq, shard int) uint64 {
	t.Helper()
	for _, ss := range acks {
		if ss.Shard == shard {
			return ss.Seq
		}
	}
	t.Fatalf("no ack for shard %d in %+v", shard, acks)
	return 0
}

// TestWorkerProtocol walks the wire contract end to end on one worker:
// assignment (fingerprint pinning, idempotent re-assign), broadcast
// ingest with retry dedupe and gap rejection, per-shard catch-up at
// mixed sequences, and reset.
func TestWorkerProtocol(t *testing.T) {
	top := shardedTopology(t)
	_, cl, stop := workerClient(t, top, "")
	defer stop()
	ctx := context.Background()

	// RPCs before assignment are refused.
	err := cl.do(ctx, http.MethodPost, "/c1/ingest", &IngestRequest{Intervals: [][]int{{0}}}, nil)
	wantCode(t, err, CodeNotAssigned)

	// A foreign fingerprint is refused.
	bad := testAssignRequest(top, []int{0, 1}, 64)
	bad.Fingerprint = Fingerprint(testTopology(t, 2))
	wantCode(t, cl.do(ctx, http.MethodPost, "/c1/assign", bad, nil), CodeTopologyMismatch)

	// Real assignment: both shards start at sequence 0.
	req := testAssignRequest(top, []int{0, 1}, 64)
	var asg AssignResponse
	if err := cl.do(ctx, http.MethodPost, "/c1/assign", req, &asg); err != nil {
		t.Fatal(err)
	}
	if asg.WorkerID != "w0" || seqOf(t, asg.Shards, 0) != 0 || seqOf(t, asg.Shards, 1) != 0 {
		t.Fatalf("unexpected assign ack: %+v", asg)
	}
	// Identical re-assign is idempotent; a different one is refused.
	if err := cl.do(ctx, http.MethodPost, "/c1/assign", req, &asg); err != nil {
		t.Fatal(err)
	}
	shrunk := testAssignRequest(top, []int{0}, 64)
	wantCode(t, cl.do(ctx, http.MethodPost, "/c1/assign", shrunk, nil), CodeAssignmentChanged)

	// Broadcast ingest advances every shard in lockstep; re-delivering
	// the same batch (a coordinator retry) is a no-op.
	batch := &IngestRequest{BaseSeq: 0, Intervals: randomIntervals(top, 3, 1)}
	var ack IngestResponse
	for i := 0; i < 2; i++ {
		if err := cl.do(ctx, http.MethodPost, "/c1/ingest", batch, &ack); err != nil {
			t.Fatal(err)
		}
		if seqOf(t, ack.Shards, 0) != 3 || seqOf(t, ack.Shards, 1) != 3 {
			t.Fatalf("delivery %d: acks %+v, want both at 3", i, ack.Shards)
		}
	}

	// A base past the shards means missed batches: refused with the
	// per-shard sequences, nothing applied.
	gap := &IngestRequest{BaseSeq: 5, Intervals: randomIntervals(top, 2, 2)}
	we := wantCode(t, cl.do(ctx, http.MethodPost, "/c1/ingest", gap, nil), CodeSeqGap)
	if seqOf(t, we.Shards, 0) != 3 || seqOf(t, we.Shards, 1) != 3 {
		t.Fatalf("gap report %+v, want both at 3", we.Shards)
	}

	// Per-shard catch-up moves one shard without touching the other.
	single := &IngestRequest{BaseSeq: 3, Intervals: randomIntervals(top, 2, 3)}
	if err := cl.do(ctx, http.MethodPost, "/c1/shards/0/ingest", single, &ack); err != nil {
		t.Fatal(err)
	}
	if seqOf(t, ack.Shards, 0) != 5 {
		t.Fatalf("shard 0 at %d after catch-up, want 5", seqOf(t, ack.Shards, 0))
	}
	var st WorkerStatusResponse
	if err := cl.do(ctx, http.MethodGet, "/c1/status", nil, &st); err != nil {
		t.Fatal(err)
	}
	if seqOf(t, st.Shards, 0) != 5 || seqOf(t, st.Shards, 1) != 3 {
		t.Fatalf("status %+v, want shard 0 at 5, shard 1 at 3", st.Shards)
	}

	// Broadcast at the lagging shard's base: the ahead shard dedupes
	// the overlap, the lagging one applies it — back in lockstep.
	mixed := &IngestRequest{BaseSeq: 3, Intervals: randomIntervals(top, 2, 3)}
	if err := cl.do(ctx, http.MethodPost, "/c1/ingest", mixed, &ack); err != nil {
		t.Fatal(err)
	}
	if seqOf(t, ack.Shards, 0) != 5 || seqOf(t, ack.Shards, 1) != 5 {
		t.Fatalf("acks %+v, want both at 5", ack.Shards)
	}

	// Results answer at the ring's sequence; unknown shards don't.
	var res ShardResultResponse
	if err := cl.do(ctx, http.MethodGet, "/c1/shards/1/result", nil, &res); err != nil {
		t.Fatal(err)
	}
	if res.Shard != 1 || res.SeqHigh != 5 {
		t.Fatalf("result shard %d seq %d, want 1/5", res.Shard, res.SeqHigh)
	}
	numShards := topology.NewPartition(top).NumShards()
	err = cl.do(ctx, http.MethodGet, fmt.Sprintf("/c1/shards/%d/result", numShards), nil, nil)
	wantCode(t, err, CodeUnknownShard)

	// Reset rewinds the shard to an empty ring at the requested base.
	var rst ResetResponse
	if err := cl.do(ctx, http.MethodPost, "/c1/shards/0/reset", &ResetRequest{Seq: 2}, &rst); err != nil {
		t.Fatal(err)
	}
	if rst.Shard != 0 || rst.Seq != 2 {
		t.Fatalf("reset ack %+v, want shard 0 at 2", rst)
	}
}

// Shards must never see rows outside their path mask: two shards fed
// the same broadcast row keep disjoint views, so a merged solve cannot
// double-count a path.
func TestWorkerMasksRows(t *testing.T) {
	top := shardedTopology(t)
	part := topology.NewPartition(top)
	wk, cl, stop := workerClient(t, top, "")
	defer stop()
	ctx := context.Background()
	if err := cl.do(ctx, http.MethodPost, "/c1/assign", testAssignRequest(top, []int{0, 1}, 16), nil); err != nil {
		t.Fatal(err)
	}
	// One row congesting every path.
	all := make([]int, top.NumPaths())
	for p := range all {
		all[p] = p
	}
	if err := cl.do(ctx, http.MethodPost, "/c1/ingest", &IngestRequest{Intervals: [][]int{all}}, nil); err != nil {
		t.Fatal(err)
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	for _, k := range []int{0, 1} {
		row := wk.shards[k].ring.CongestedAt(0)
		want := part.ShardPaths(k)
		if row.Count() != want.Count() {
			t.Fatalf("shard %d row has %d paths, want its universe %d", k, row.Count(), want.Count())
		}
		masked := row.Clone()
		masked.IntersectWith(want)
		if masked.Count() != row.Count() {
			t.Fatalf("shard %d row leaks paths outside its universe", k)
		}
	}
}

// TestWorkerWALRecoveryTwoShards is the per-shard durability
// regression: a worker owning ≥ 2 shards writes one WAL per shard
// (shard-<k> subdirectories), and a restarted worker recovers every
// shard to its pre-crash sequence with bit-identical solve results.
func TestWorkerWALRecoveryTwoShards(t *testing.T) {
	top := shardedTopology(t)
	walDir := t.TempDir()
	const n = 30

	wk1, cl1, stop1 := workerClient(t, top, walDir)
	ctx := context.Background()
	if err := cl1.do(ctx, http.MethodPost, "/c1/assign", testAssignRequest(top, []int{0, 1}, 64), nil); err != nil {
		t.Fatal(err)
	}
	var ack IngestResponse
	if err := cl1.do(ctx, http.MethodPost, "/c1/ingest",
		&IngestRequest{BaseSeq: 0, Intervals: randomIntervals(top, n, 9)}, &ack); err != nil {
		t.Fatal(err)
	}
	before := map[int]*ShardResultResponse{}
	for _, k := range []int{0, 1} {
		var res ShardResultResponse
		if err := cl1.do(ctx, http.MethodGet, fmt.Sprintf("/c1/shards/%d/result", k), nil, &res); err != nil {
			t.Fatal(err)
		}
		before[k] = &res
	}
	stop1()
	_ = wk1

	for _, k := range []int{0, 1} {
		if _, err := os.Stat(filepath.Join(walDir, fmt.Sprintf("shard-%d", k))); err != nil {
			t.Fatalf("shard %d has no WAL directory: %v", k, err)
		}
	}

	// Restart: assignment must come back at the recovered sequences and
	// the shard blocks must be bit-identical to the pre-restart solves.
	_, cl2, stop2 := workerClient(t, top, walDir)
	defer stop2()
	var asg AssignResponse
	if err := cl2.do(ctx, http.MethodPost, "/c1/assign", testAssignRequest(top, []int{0, 1}, 64), &asg); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1} {
		if got := seqOf(t, asg.Shards, k); got != n {
			t.Fatalf("shard %d recovered to seq %d, want %d", k, got, n)
		}
		var res ShardResultResponse
		if err := cl2.do(ctx, http.MethodGet, fmt.Sprintf("/c1/shards/%d/result", k), nil, &res); err != nil {
			t.Fatal(err)
		}
		res.BuildNs, res.RepairNs, res.SolveNs = 0, 0, 0
		want := *before[k]
		want.BuildNs, want.RepairNs, want.SolveNs = 0, 0, 0
		// A recovered solve is cold where the original may have been
		// warm; only the solved block itself must match.
		res.Warm, res.Repaired, res.RepairedNumeric, res.RepairFailed = false, false, false, false
		want.Warm, want.Repaired, want.RepairedNumeric, want.RepairFailed = false, false, false, false
		if !reflect.DeepEqual(&want, &res) {
			t.Fatalf("shard %d: recovered block differs from pre-restart block\n got %+v\nwant %+v", k, res, want)
		}
	}

	// Ingest continues at the recovered sequence, and the old overlap
	// still dedupes.
	if err := cl2.do(ctx, http.MethodPost, "/c1/ingest",
		&IngestRequest{BaseSeq: n, Intervals: randomIntervals(top, 5, 10)}, &ack); err != nil {
		t.Fatal(err)
	}
	if seqOf(t, ack.Shards, 0) != n+5 || seqOf(t, ack.Shards, 1) != n+5 {
		t.Fatalf("post-recovery acks %+v, want both at %d", ack.Shards, n+5)
	}
}
