package tomography

// Direct coverage of the deprecated Compute* facade wrappers, pinning
// the MIGRATION.md guarantee: each wrapper remains a thin front for the
// registry estimator that replaced it and produces bit-identical
// probabilities, over both store kinds (full-period Recorder and live
// SlidingWindow).

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// compatStores records one correlated monitoring period into a Recorder
// and a SlidingWindow large enough to retain all of it, so the two
// stores hold identical observations.
func compatStores(top *Topology, intervals int, seed int64) (*Recorder, *SlidingWindow) {
	rec := NewRecorder(top.NumPaths())
	win := NewSlidingWindow(top.NumPaths(), intervals)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < intervals; i++ {
		cong := NewSet(top.NumLinks())
		if rng.Float64() < 0.3 {
			cong.Add(0)
		}
		if rng.Float64() < 0.4 { // correlated pair {e2, e3}
			cong.Add(1)
			cong.Add(2)
		}
		congPaths := NewSet(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
		win.Add(congPaths)
	}
	return rec, win
}

func TestDeprecatedComputeProbabilities(t *testing.T) {
	top := Fig1Case1()
	rec, win := compatStores(top, 1500, 21)
	cfg := DefaultProbabilityConfig()
	cfg.AlwaysGoodTol = 0.02

	for _, store := range []struct {
		name string
		obs  ObservationStore
	}{{"recorder", rec}, {"window", win}} {
		res, err := ComputeProbabilities(top, store.obs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", store.name, err)
		}
		est, err := NewEstimator("correlation-complete")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := est.Estimate(context.Background(), top, store.obs,
			WithMaxSubsetSize(cfg.MaxSubsetSize), WithAlwaysGoodTol(cfg.AlwaysGoodTol))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < top.NumLinks(); e++ {
			p, exact := res.LinkCongestProbOrFallback(e)
			pRef, exactRef := ref.LinkCongestProb(e)
			if p != pRef || exact != exactRef {
				t.Fatalf("%s: link %d: wrapper (%v,%v) != estimator (%v,%v)", store.name, e, p, exact, pRef, exactRef)
			}
		}
		// The pre-registry joint-probability surface must keep working.
		pair := SetOf(top.NumLinks(), 1, 2)
		g, ok := res.SubsetGoodProb(pair)
		gRef, okRef := ref.Detail.SubsetGoodProb(pair)
		if ok != okRef || (ok && g != gRef) {
			t.Fatalf("%s: SubsetGoodProb (%v,%v) != (%v,%v)", store.name, g, ok, gRef, okRef)
		}
		if !ok || math.IsNaN(g) {
			t.Fatalf("%s: correlated pair not identified", store.name)
		}
		c, ok := res.CongestedProb(pair)
		cRef, okRef := ref.Detail.CongestedProb(pair)
		if ok != okRef || (ok && c != cRef) {
			t.Fatalf("%s: CongestedProb (%v,%v) != (%v,%v)", store.name, c, ok, cRef, okRef)
		}
	}
}

func TestDeprecatedComputeProbabilitiesIndependence(t *testing.T) {
	top := Fig1Case1()
	rec, win := compatStores(top, 1500, 22)
	cfg := IndependenceConfig{AlwaysGoodTol: 0.02, Seed: 7}

	for _, store := range []struct {
		name string
		obs  ObservationStore
	}{{"recorder", rec}, {"window", win}} {
		res, err := ComputeProbabilitiesIndependence(top, store.obs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", store.name, err)
		}
		est, err := NewEstimator("independence")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := est.Estimate(context.Background(), top, store.obs,
			WithAlwaysGoodTol(cfg.AlwaysGoodTol), WithSeed(cfg.Seed))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < top.NumLinks(); e++ {
			if res.Prob[e] != ref.LinkProb[e] || res.Exact[e] != ref.LinkExact[e] {
				t.Fatalf("%s: link %d: wrapper (%v,%v) != estimator (%v,%v)",
					store.name, e, res.Prob[e], res.Exact[e], ref.LinkProb[e], ref.LinkExact[e])
			}
			if math.IsNaN(res.Prob[e]) || res.Prob[e] < 0 || res.Prob[e] > 1 {
				t.Fatalf("%s: link %d prob %v", store.name, e, res.Prob[e])
			}
		}
		if !res.PotentiallyCongested.Equal(ref.PotentiallyCongested) {
			t.Fatalf("%s: potentially-congested sets differ", store.name)
		}
	}
}

func TestDeprecatedComputeProbabilitiesHeuristic(t *testing.T) {
	top := Fig1Case1()
	rec, win := compatStores(top, 1500, 23)
	cfg := HeuristicConfig{AlwaysGoodTol: 0.02}

	for _, store := range []struct {
		name string
		obs  ObservationStore
	}{{"recorder", rec}, {"window", win}} {
		res, err := ComputeProbabilitiesHeuristic(top, store.obs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", store.name, err)
		}
		est, err := NewEstimator("correlation-heuristic")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := est.Estimate(context.Background(), top, store.obs, WithAlwaysGoodTol(cfg.AlwaysGoodTol))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < top.NumLinks(); e++ {
			if res.Prob[e] != ref.LinkProb[e] || res.Exact[e] != ref.LinkExact[e] {
				t.Fatalf("%s: link %d: wrapper (%v,%v) != estimator (%v,%v)",
					store.name, e, res.Prob[e], res.Exact[e], ref.LinkProb[e], ref.LinkExact[e])
			}
		}
	}
}

// The wrappers must reject a store whose universe does not match the
// topology, exactly like the estimators they front.
func TestDeprecatedWrappersRejectUniverseMismatch(t *testing.T) {
	top := Fig1Case1()
	bad := NewRecorder(top.NumPaths() + 2)
	if _, err := ComputeProbabilities(top, bad, DefaultProbabilityConfig()); err == nil {
		t.Fatal("ComputeProbabilities accepted a mismatched store")
	}
	if _, err := ComputeProbabilitiesIndependence(top, bad, IndependenceConfig{}); err == nil {
		t.Fatal("ComputeProbabilitiesIndependence accepted a mismatched store")
	}
	if _, err := ComputeProbabilitiesHeuristic(top, bad, HeuristicConfig{}); err == nil {
		t.Fatal("ComputeProbabilitiesHeuristic accepted a mismatched store")
	}
}
