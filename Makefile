# Developer entry points. CI runs the same targets (see
# .github/workflows/ci.yml).

GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)
BENCHTIME ?= 1s

.PHONY: all build vet test bench bench-smoke bench-baseline bench-compare

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark run, recorded as a dated JSON snapshot so the perf
# trajectory is tracked from PR to PR (see DESIGN.md reference table).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | tee BENCH_$(BENCH_DATE).json

# One-iteration smoke: every benchmark must still execute.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Refresh the committed baseline snapshot that bench-compare diffs
# against. Run on a quiet box and commit the result.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -json . > BENCH_baseline.json

# Diff a fresh run against the committed baseline. Informational by
# default (benchdiff always exits 0 without -fail-over); CI runs this
# with BENCHTIME=1x as a reported, non-fatal step.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -json . > BENCH_compare.json
	$(GO) run ./cmd/benchdiff BENCH_baseline.json BENCH_compare.json
