# Developer entry points. CI runs the same targets (see
# .github/workflows/ci.yml).

GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)
BENCHTIME ?= 1s
# bench-gate failure threshold: fail when any benchmark regresses by
# more than this percentage over the committed baseline.
BENCH_OVER ?= 25
# allocs/op gate: benchmarks matching ALLOC_GATE fail bench-gate when
# their allocation count regresses by more than ALLOC_OVER percent
# (allocs are deterministic, so this stays strict even on noisy CI).
ALLOC_OVER ?= 10
ALLOC_GATE ?= EpochSolve|PlanRepair|FrontierMoveRepair|StreamIngest|MetricsObserve|ColdPlanBuild

.PHONY: all build vet fmt-check test examples bench bench-smoke bench-baseline bench-compare bench-gate profile

all: vet fmt-check build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt gate: fail when any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Build and run every example program; API drift in examples/ breaks
# this target (and CI) rather than rotting silently.
examples:
	$(GO) build ./examples/...
	@for ex in quickstart inference-vs-probability disjoint-paths peer-monitoring; do \
		echo "== examples/$$ex"; $(GO) run ./examples/$$ex >/dev/null || exit 1; \
	done

test:
	$(GO) test ./...

# Full benchmark run, recorded as a dated JSON snapshot so the perf
# trajectory is tracked from PR to PR (see DESIGN.md reference table).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | tee BENCH_$(BENCH_DATE).json

# One-iteration smoke: every benchmark must still execute.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Refresh the committed baseline snapshot that bench-compare diffs
# against. Run on a quiet box and commit the result.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -json . > BENCH_baseline.json

# Diff a fresh run against the committed baseline. Informational by
# default (benchdiff always exits 0 without -fail-over); CI runs this
# with BENCHTIME=1x as a reported, non-fatal step.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -json . > BENCH_compare.json
	$(GO) run ./cmd/benchdiff BENCH_baseline.json BENCH_compare.json

# The same comparison as a hard gate: exit non-zero when any benchmark
# regresses more than BENCH_OVER over the committed baseline, or when
# an epoch-solve benchmark (ALLOC_GATE) regresses allocs/op by more
# than ALLOC_OVER. CI runs this as a required step (BENCHTIME=0.5s,
# BENCH_OVER=50 to absorb runner noise); the defaults here are the
# strict local gate.
bench-gate:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -json . > BENCH_compare.json
	$(GO) run ./cmd/benchdiff -fail-over $(BENCH_OVER) -allocs-over $(ALLOC_OVER) -allocs-for '$(ALLOC_GATE)' BENCH_baseline.json BENCH_compare.json

# CPU + memory profiles of the sharded epoch solve, the streaming hot
# path: emits cpu.pprof / mem.pprof for `go tool pprof`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkShardedEpochSolve -benchmem -benchtime $(BENCHTIME) -cpuprofile cpu.pprof -memprofile mem.pprof .
