# Developer entry points. CI runs the same targets (see
# .github/workflows/ci.yml).

GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: all build vet test bench bench-smoke

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark run, recorded as a dated JSON snapshot so the perf
# trajectory is tracked from PR to PR (see DESIGN.md reference table).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | tee BENCH_$(BENCH_DATE).json

# One-iteration smoke: every benchmark must still execute.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .
