package tomography

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// advertises it: build, record, compute.
func TestFacadeEndToEnd(t *testing.T) {
	top := Fig1Case1()
	rec := NewRecorder(top.NumPaths())
	rng := rand.New(rand.NewSource(1))
	const p23 = 0.4
	for i := 0; i < 20000; i++ {
		cong := NewSet(top.NumLinks())
		if rng.Float64() < p23 {
			cong.Add(1)
			cong.Add(2)
		}
		congPaths := NewSet(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}
	res, err := ComputeProbabilities(top, rec, DefaultProbabilityConfig())
	if err != nil {
		t.Fatal(err)
	}
	joint, ok := res.CongestedProb(SetOf(top.NumLinks(), 1, 2))
	if !ok {
		t.Fatal("pair should be identifiable")
	}
	if math.Abs(joint-p23) > 0.03 {
		t.Fatalf("joint = %.3f, want ≈%.2f", joint, p23)
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bcfg := DefaultBriteConfig()
	bcfg.NumAS = 15
	bcfg.RoutersPerAS = 4
	top, inet, err := GenerateBrite(bcfg, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumPaths() == 0 || inet.Routers.N() == 0 {
		t.Fatal("empty generation")
	}

	tcfg := DefaultTracerouteConfig()
	tcfg.Internet.NumAS = 30
	tcfg.Internet.RoutersPerAS = 4
	tcfg.TargetPaths = 40
	campaign, err := GenerateSparse(tcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if campaign.Kept == 0 {
		t.Fatal("campaign kept nothing")
	}
}

func TestFacadeSimulationAndInference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bcfg := DefaultBriteConfig()
	bcfg.NumAS = 15
	bcfg.RoutersPerAS = 4
	top, _, err := GenerateBrite(bcfg, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(top, DefaultSimulationConfig(RandomCongestion), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(top.NumPaths())
	var lastObs Observation
	for i := 0; i < 100; i++ {
		lastObs = sim.Interval(i, rng)
		rec.Add(lastObs.CongestedPaths)
	}
	for _, alg := range []InferenceAlgorithm{
		NewSparsity(),
		NewBayesianIndependence(IndependenceConfig{AlwaysGoodTol: 0.02}),
		NewBayesianCorrelation(func() ProbabilityConfig {
			c := DefaultProbabilityConfig()
			c.AlwaysGoodTol = 0.02
			return c
		}()),
	} {
		if err := alg.Prepare(context.Background(), top, rec); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		inferred := alg.Infer(lastObs.CongestedPaths)
		if inferred == nil {
			t.Fatalf("%s returned nil", alg.Name())
		}
	}

	// Baseline probability computations run through the facade too.
	if _, err := ComputeProbabilitiesIndependence(top, rec, IndependenceConfig{AlwaysGoodTol: 0.02}); err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeProbabilitiesHeuristic(top, rec, HeuristicConfig{AlwaysGoodTol: 0.02}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeEstimatorRegistry drives the unified API end to end: every
// registered estimator runs over the same recorded period through the
// facade, honoring options and context.
func TestFacadeEstimatorRegistry(t *testing.T) {
	top := Fig1Case1()
	rec := NewRecorder(top.NumPaths())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		cong := NewSet(top.NumLinks())
		if rng.Float64() < 0.4 {
			cong.Add(1)
			cong.Add(2)
		}
		congPaths := NewSet(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}
	names := Estimators()
	if len(names) != 7 {
		t.Fatalf("registry has %d estimators: %v", len(names), names)
	}
	for _, name := range names {
		est, err := NewEstimator(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := est.Estimate(context.Background(), top, rec,
			WithMaxSubsetSize(2), WithConcurrency(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Algorithm != name || len(res.LinkProb) != top.NumLinks() {
			t.Fatalf("%s: malformed estimate", name)
		}
		for e, p := range res.LinkProb {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("%s: link %d prob %v", name, e, p)
			}
		}
	}
	if _, err := NewEstimator("nope"); err == nil {
		t.Fatal("unknown estimator accepted")
	}
	// Options validate eagerly through the facade too.
	est, _ := NewEstimator("correlation-complete")
	if _, err := est.Estimate(context.Background(), top, rec, WithMaxSubsetSize(-1)); err == nil {
		t.Fatal("invalid option accepted")
	}
	// The correlation-complete estimate still answers joint queries.
	res, err := est.Estimate(context.Background(), top, rec)
	if err != nil {
		t.Fatal(err)
	}
	if joint, ok := res.Detail.CongestedProb(SetOf(top.NumLinks(), 1, 2)); !ok || math.Abs(joint-0.4) > 0.05 {
		t.Fatalf("joint = %v ok=%v, want ≈0.4", joint, ok)
	}
}

func TestCorrelationSetsByASFacade(t *testing.T) {
	links := []Link{{ID: 0, AS: 1}, {ID: 1, AS: 1}, {ID: 2, AS: 2}}
	sets := CorrelationSetsByAS(links)
	if len(sets) != 2 || len(sets[0]) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	top, err := NewTopology(links, []Path{{ID: 0, Links: []int{0, 1, 2}}}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if top.CorrSetOf(1) != 0 {
		t.Fatal("correlation set lookup wrong")
	}
	// Invalid input surfaces as an error, not a panic.
	if _, err := NewTopology(links, []Path{{ID: 0, Links: []int{99}}}, sets); err == nil {
		t.Fatal("dangling link reference accepted")
	}
	// The panicking form remains for literal topologies.
	if MustNewTopology(links, []Path{{ID: 0, Links: []int{0, 1, 2}}}, sets) == nil {
		t.Fatal("MustNewTopology returned nil")
	}
}
