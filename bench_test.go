// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablation and scaling benches for the design choices
// called out in DESIGN.md. Benchmarks run at the Small experiment scale
// so `go test -bench=.` finishes quickly; cmd/tomo regenerates the same
// artifacts at medium/paper scale.
//
// Each figure benchmark reports, via b.ReportMetric, the headline
// quantity of the corresponding panel so that bench output doubles as a
// compact reproduction record.
package tomography

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wal"
)

func benchCfg() experiment.Config {
	return experiment.DefaultConfig(experiment.Small())
}

// BenchmarkTable2 regenerates the assumption matrix (Table 2).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiment.RenderTable2(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure3DetectionRate regenerates Figure 3(a): detection rate
// of the three Boolean Inference algorithms over the five scenarios.
func BenchmarkFigure3DetectionRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: Bayesian-Correlation's detection on the Sparse
		// topology (the paper's "as low as 68%" regime).
		b.ReportMetric(rows[4].Detection["Bayesian-Correlation"], "sparse-detect")
		b.ReportMetric(rows[0].Detection["Sparsity"], "brite-detect")
	}
}

// BenchmarkFigure3FalsePositiveRate regenerates Figure 3(b).
func BenchmarkFigure3FalsePositiveRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[4].FalsePositive["Bayesian-Independence"], "sparse-fpr")
		b.ReportMetric(rows[0].FalsePositive["Sparsity"], "brite-fpr")
	}
}

// BenchmarkFigure4aBrite regenerates Figure 4(a): mean absolute error
// of the three Probability Computation algorithms on Brite topologies.
func BenchmarkFigure4aBrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure4(benchCfg(), experiment.Brite)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].MeanErr("Correlation-complete"), "noindep-complete-err")
		b.ReportMetric(rows[2].MeanErr("Independence"), "noindep-indep-err")
	}
}

// BenchmarkFigure4bSparse regenerates Figure 4(b): the same comparison
// on Sparse topologies.
func BenchmarkFigure4bSparse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure4(benchCfg(), experiment.Sparse)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].MeanErr("Correlation-complete"), "noindep-complete-err")
		b.ReportMetric(rows[2].MeanErr("Independence"), "noindep-indep-err")
	}
}

// BenchmarkFigure4cCDF regenerates Figure 4(c): the CDF of the absolute
// error in the No-Independence scenario on Sparse topologies.
func BenchmarkFigure4cCDF(b *testing.B) {
	points := []float64{0, 0.1, 0.2, 0.5, 1}
	for i := 0; i < b.N; i++ {
		curves, err := experiment.Figure4CDF(benchCfg(), points)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: fraction of links with error < 0.1 per algorithm
		// (the paper reports 80% / 65% / 50%).
		b.ReportMetric(curves["Correlation-complete"][1], "complete-cdf@0.1")
		b.ReportMetric(curves["Correlation-heuristic"][1], "heuristic-cdf@0.1")
		b.ReportMetric(curves["Independence"][1], "indep-cdf@0.1")
	}
}

// BenchmarkFigure4dSubsets regenerates Figure 4(d): link vs
// correlation-subset error of Correlation-complete.
func BenchmarkFigure4dSubsets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiment.Figure4Subsets(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].SubsetErr, "brite-subset-err")
		b.ReportMetric(cells[1].SubsetErr, "sparse-subset-err")
	}
}

// BenchmarkAlgorithm1Scaling measures how Correlation-complete scales
// with topology size (§5.3's complexity discussion: O(n1³ + n1²·2^n2·n3)).
func BenchmarkAlgorithm1Scaling(b *testing.B) {
	for _, numAS := range []int{10, 20, 40} {
		b.Run(sizeName(numAS), func(b *testing.B) {
			scale := experiment.Small()
			scale.BriteNumAS = numAS
			scale.BritePaths = numAS * 6
			top, err := experiment.BuildTopology(experiment.Brite, scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			mc := netsim.DefaultConfig(netsim.NoIndependence)
			mc.PacketsPerPath = scale.PacketsPerPath
			model, err := netsim.NewModel(top, mc, scale.Intervals, rng)
			if err != nil {
				b.Fatal(err)
			}
			rec := observe.NewRecorder(top.NumPaths())
			for t := 0; t < scale.Intervals; t++ {
				rec.Add(model.Interval(t, rng).CongestedPaths)
			}
			cfg := core.Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(context.Background(), top, rec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSubsetSize compares the resource knob's settings
// (§4: "sets of one, two, or three links"): larger subsets cost more
// and identify more.
func BenchmarkAblationSubsetSize(b *testing.B) {
	scale := experiment.Small()
	top, err := experiment.BuildTopology(experiment.Brite, scale, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mc := netsim.DefaultConfig(netsim.NoIndependence)
	mc.PacketsPerPath = scale.PacketsPerPath
	model, err := netsim.NewModel(top, mc, scale.Intervals, rng)
	if err != nil {
		b.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for t := 0; t < scale.Intervals; t++ {
		rec.Add(model.Interval(t, rng).CongestedPaths)
	}
	for _, k := range []int{1, 2, 3} {
		b.Run(sizeName(k), func(b *testing.B) {
			cfg := core.Config{MaxSubsetSize: k, AlwaysGoodTol: 0.02}
			var identified int
			for i := 0; i < b.N; i++ {
				res, err := core.Compute(context.Background(), top, rec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				identified = 0
				for _, s := range res.Subsets {
					if s.Identifiable {
						identified++
					}
				}
			}
			b.ReportMetric(float64(identified), "identified-subsets")
		})
	}
}

// BenchmarkNullSpaceUpdate measures Algorithm 2 (the incremental
// null-space update) against full recomputation, the paper's stated
// reason for introducing it.
func BenchmarkNullSpaceUpdate(b *testing.B) {
	const n = 300
	rng := rand.New(rand.NewSource(1))
	base := linalg.NewMatrix(40, n)
	for i := range base.Data {
		if rng.Intn(6) == 0 {
			base.Data[i] = 1
		}
	}
	ns := linalg.NullSpaceBasis(base)
	row := make([]float64, n)
	for j := range row {
		if rng.Intn(6) == 0 {
			row[j] = 1
		}
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.NullSpaceUpdate(ns, row)
		}
	})
	b.Run("recompute", func(b *testing.B) {
		grown := base.AppendRow(row)
		for i := 0; i < b.N; i++ {
			linalg.NullSpaceBasis(grown)
		}
	})
}

// BenchmarkBinomialSampler measures both branches of the probe sampler.
func BenchmarkBinomialSampler(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.Run("inversion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			netsim.Binomial(50, 0.02, rng)
		}
	})
	b.Run("normal-approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			netsim.Binomial(1000, 0.5, rng)
		}
	})
}

func sizeName(n int) string { return strconv.Itoa(n) }

// BenchmarkGoodCount compares the columnar empirical-frequency query
// (per-path congestion masks, OR + popcount, allocation-free) against
// the retained naive row-scan reference at the paper's interval count.
// This is the innermost query of every equation the solvers build.
func BenchmarkGoodCount(b *testing.B) {
	const numPaths, intervals = 1500, 1000
	rng := rand.New(rand.NewSource(1))
	rec := observe.NewRecorder(numPaths)
	s := bitset.New(numPaths)
	for t := 0; t < intervals; t++ {
		s.Clear()
		for p := 0; p < numPaths; p++ {
			if rng.Intn(5) == 0 {
				s.Add(p)
			}
		}
		rec.Add(s)
	}
	paths := bitset.New(numPaths)
	for paths.Count() < 8 {
		paths.Add(rng.Intn(numPaths))
	}
	if got, want := rec.GoodCount(paths), rec.GoodCountNaive(paths); got != want {
		b.Fatalf("columnar GoodCount %d != naive %d", got, want)
	}
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.GoodCount(paths)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.GoodCountNaive(paths)
		}
	})
	b.Run("columnar-allcongested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.AllCongestedCount(paths)
		}
	})
	b.Run("naive-allcongested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.AllCongestedCountNaive(paths)
		}
	})
}

// BenchmarkStreamIngest measures the streaming store's steady-state
// ingest path at the paper's path-universe scale: each Add evicts the
// oldest interval of a full ring and must not allocate (the ring and
// the per-path masks are warm after the first lap). The windowed
// queries are benchmarked alongside since the solver loop issues them
// against the same layout.
func BenchmarkStreamIngest(b *testing.B) {
	const numPaths, window = 1500, 1000
	rng := rand.New(rand.NewSource(1))
	pool := make([]*bitset.Set, 64)
	for i := range pool {
		s := bitset.New(numPaths)
		for p := 0; p < numPaths; p++ {
			if rng.Intn(5) == 0 {
				s.Add(p)
			}
		}
		pool[i] = s
	}
	newWarmWindow := func() *stream.Window {
		w := stream.NewWindow(numPaths, window)
		for i := 0; i < 2*window; i++ { // wrap the ring: steady state
			w.Add(pool[i%len(pool)])
		}
		return w
	}
	b.Run("add-evict", func(b *testing.B) {
		w := newWarmWindow()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Add(pool[i%len(pool)])
		}
		b.ReportMetric(float64(w.T()), "window-intervals")
	})
	b.Run("add-evict-wal", func(b *testing.B) {
		// Durable variant: the same steady-state eviction loop with a
		// WAL attached (fsync=interval, the default). The append
		// encodes into a reused slab and issues one Write, so
		// durability must not add a single allocation per interval.
		wl, err := wal.Open(wal.Options{Dir: b.TempDir(), Policy: wal.SyncInterval})
		if err != nil {
			b.Fatal(err)
		}
		defer wl.Close()
		w := newWarmWindow()
		w.SetLog(wl)
		batch := make([]*bitset.Set, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch[0] = pool[i%len(pool)]
			if _, err := w.AddBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(w.T()), "window-intervals")
	})
	paths := bitset.New(numPaths)
	for paths.Count() < 8 {
		paths.Add(rng.Intn(numPaths))
	}
	b.Run("windowed-goodcount", func(b *testing.B) {
		w := newWarmWindow()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.GoodCount(paths)
		}
	})
	b.Run("windowed-allcongested", func(b *testing.B) {
		w := newWarmWindow()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.AllCongestedCount(paths)
		}
	})
}

// BenchmarkShardedEpochSolve measures one streaming epoch of the
// sharded solver over a multi-shard topology — every shard block solved
// and merged — comparing the from-scratch path (fresh solver, no
// carried-forward plans) against the warm-started path (retained
// solver, always-good set stable across epochs). The warm path is the
// steady state of tomod's per-shard loops; the gap is the structural
// work — enumeration, augmentation, identifiability, QR factorization —
// that the carried-forward plan avoids. Results are bit-identical
// either way (TestMetamorphicWarmShardSolves).
func BenchmarkShardedEpochSolve(b *testing.B) {
	top, err := experiment.BuildTopology(experiment.Sparse, experiment.Small(), 1)
	if err != nil {
		b.Fatal(err)
	}
	part := topology.NewPartition(top)
	if part.NumShards() < 2 {
		b.Fatalf("topology has %d shards, want ≥ 2", part.NumShards())
	}
	win := stream.NewSharded(top.NumPaths(), 1000, part.PathShards(), part.NumShards())
	rng := rand.New(rand.NewSource(1))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, 1200, rng)
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 1200; t++ {
		win.Add(model.Interval(t, rng).CongestedPaths)
	}
	opts := []estimator.Option{estimator.WithMaxSubsetSize(2), estimator.WithAlwaysGoodTol(0.02)}
	epoch := func(b *testing.B, sv *estimator.ShardedSolver) {
		blocks := make([]*core.Result, sv.NumShards())
		for s := range blocks {
			res, _, err := sv.SolveShard(context.Background(), s, win.Shard(s))
			if err != nil {
				b.Fatal(err)
			}
			blocks[s] = res
		}
		if est := sv.Merge(blocks, win); len(est.LinkProb) != top.NumLinks() {
			b.Fatal("malformed merged estimate")
		}
	}
	b.Run("from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sv, err := estimator.NewShardedSolver(top, opts...)
			if err != nil {
				b.Fatal(err)
			}
			epoch(b, sv)
		}
	})
	b.Run("warm-started", func(b *testing.B) {
		sv, err := estimator.NewShardedSolver(top, opts...)
		if err != nil {
			b.Fatal(err)
		}
		epoch(b, sv) // cold epoch builds every shard's plan
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			epoch(b, sv)
		}
	})
}

// BenchmarkSnapshotQuery measures the streaming service's query-side
// latency through the real HTTP handlers (mux, JSON encoding and all)
// against a published solver snapshot, the path a monitoring dashboard
// polls.
func BenchmarkSnapshotQuery(b *testing.B) {
	scale := experiment.Small()
	scale.BriteNumAS = 20
	scale.BritePaths = 80
	top, err := experiment.BuildTopology(experiment.Brite, scale, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := server.New(top, server.Config{
		WindowSize: 500,
		SolverOpts: []estimator.Option{
			estimator.WithMaxSubsetSize(2),
			estimator.WithAlwaysGoodTol(0.02),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, 700, rng)
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 700; t++ {
		s.Ingest([]*bitset.Set{model.Interval(t, rng).CongestedPaths})
	}
	if snap := s.Recompute(context.Background()); snap.Err != nil {
		b.Fatal(snap.Err)
	}
	handler := s.Handler()
	serve := func(b *testing.B, method, url string) {
		req := httptest.NewRequest(method, url, nil)
		for i := 0; i < b.N; i++ {
			rw := httptest.NewRecorder()
			handler.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				b.Fatalf("%s %s: %d", method, url, rw.Code)
			}
		}
	}
	b.Run("link", func(b *testing.B) { serve(b, http.MethodGet, "/v1/links/3") })
	b.Run("status", func(b *testing.B) { serve(b, http.MethodGet, "/v1/status") })
	b.Run("congested-paths", func(b *testing.B) { serve(b, http.MethodGet, "/v1/paths/congested?min=0.25") })
}

// BenchmarkFigure4Parallel measures the parallel experiment engine:
// the same Figure 4(a) regeneration fanned out over 1, 2 and 4
// workers. Output is bit-identical across worker counts (see
// TestFigure4ParallelMatchesSerial); only wall-clock should move.
func BenchmarkFigure4Parallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(sizeName(workers), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Figure4(cfg, experiment.Brite); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// planRepairFixture builds the Small-sparse streaming state behind
// BenchmarkPlanRepair and BenchmarkEpochSolveBatch: a warm unsharded
// plan over a full window, plus a drifted twin of the window in which
// one redundantly covered always-good path turned congested — the
// frontier-stable drift class Plan.Repair absorbs.
func planRepairFixture(b *testing.B) (top *topology.Topology, cfg core.Config, base, drifted *stream.Window) {
	b.Helper()
	top, err := experiment.BuildTopology(experiment.Sparse, experiment.Small(), 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg = core.Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
	const intervals, capacity = 1200, 1000
	rng := rand.New(rand.NewSource(1))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, intervals, rng)
	if err != nil {
		b.Fatal(err)
	}
	stream2 := make([]*bitset.Set, intervals)
	base = stream.NewWindow(top.NumPaths(), capacity)
	for t := 0; t < intervals; t++ {
		stream2[t] = model.Interval(t, rng).CongestedPaths.Clone()
		base.Add(stream2[t])
	}
	// Pick an always-good path whose links all stay covered by the
	// remaining good paths: congesting it drifts the always-good set
	// without moving the §5.2 frontier.
	good := base.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	goodLinks := top.LinksOf(good)
	drift := -1
	good.ForEach(func(p int) bool {
		rest := good.Clone()
		rest.Remove(p)
		if top.LinksOf(rest).Equal(goodLinks) {
			drift = p
			return false
		}
		return true
	})
	if drift < 0 {
		b.Fatal("no redundantly covered always-good path; fixture cannot drift repairably")
	}
	drifted = stream.NewWindow(top.NumPaths(), capacity)
	for t := 0; t < intervals; t++ {
		s := stream2[t]
		if t%5 == 0 {
			s = s.Clone()
			s.Add(drift)
		}
		drifted.Add(s)
	}
	return top, cfg, base, drifted
}

// BenchmarkPlanRepair measures an epoch solve across an always-good
// drift with the plan repaired in place (core.Plan.Repair re-keys the
// retained structure in O(Δ)) against the cold rebuild the same drift
// used to force. Every iteration of the repaired leg really drifts:
// the two windows alternate, so each solve absorbs a fresh always-good
// change. Results are bit-identical (TestPlanRepairMatchesColdUnderDrift
// and the metamorphic drift suite pin this).
func BenchmarkPlanRepair(b *testing.B) {
	top, cfg, base, drifted := planRepairFixture(b)
	ctx := context.Background()
	stores := []*stream.Window{base, drifted}
	// Confirm the fixture's drift is inside the repair class.
	_, plan, err := core.ComputePlanned(ctx, top, base, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	_, next, err := core.ComputePlanned(ctx, top, drifted, cfg, plan)
	if err != nil {
		b.Fatal(err)
	}
	if next != plan || plan.RepairCount() != 1 {
		b.Fatal("fixture drift was not repaired; benchmark would not measure Repair")
	}
	b.Run("repaired", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ComputePlanned(ctx, top, stores[i%2], cfg, plan); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(plan.RepairCount()), "repairs")
	})
	b.Run("cold-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compute(ctx, top, stores[i%2], cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// frontierMoveFixture builds the Small-sparse streaming state behind
// BenchmarkFrontierMoveRepair: a warm plan over a full window plus a
// drifted twin in which an always-good path that is the sole cover of
// at least one good link turned congested — drift that moves the §5.2
// frontier, which tier-1 Repair must reject and only the tier-2
// numerical patch (core.Plan.RepairNumeric) can absorb warm.
func frontierMoveFixture(b *testing.B) (top *topology.Topology, cfg core.Config, base, drifted *stream.Window) {
	b.Helper()
	top, err := experiment.BuildTopology(experiment.Sparse, experiment.Small(), 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg = core.Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, NumericalPlanRepair: true, NumericalRepairMaxFrac: 1}
	const intervals, capacity = 1200, 1000
	rng := rand.New(rand.NewSource(1))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, intervals, rng)
	if err != nil {
		b.Fatal(err)
	}
	stream2 := make([]*bitset.Set, intervals)
	base = stream.NewWindow(top.NumPaths(), capacity)
	for t := 0; t < intervals; t++ {
		stream2[t] = model.Interval(t, rng).CongestedPaths.Clone()
		base.Add(stream2[t])
	}
	// Pick an always-good path that uniquely vouches for some link:
	// congesting it shrinks the good-link set, moving the frontier.
	good := base.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	goodLinks := top.LinksOf(good)
	ctx := context.Background()
	var candidates []int
	good.ForEach(func(p int) bool {
		rest := good.Clone()
		rest.Remove(p)
		if !top.LinksOf(rest).Equal(goodLinks) {
			candidates = append(candidates, p)
		}
		return true
	})
	// Among the frontier-moving candidates, use the first whose drift
	// the numerical repair actually absorbs in both directions (rank
	// loss on this fixture would fall back cold and benchmark nothing).
	for _, drift := range candidates {
		d := stream.NewWindow(top.NumPaths(), capacity)
		for t := 0; t < intervals; t++ {
			s := stream2[t]
			if t%5 == 0 {
				s = s.Clone()
				s.Add(drift)
			}
			d.Add(s)
		}
		_, plan, err := core.ComputePlanned(ctx, top, base, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, next, err := core.ComputePlanned(ctx, top, d, cfg, plan); err != nil || next != plan {
			continue
		}
		if _, next, err := core.ComputePlanned(ctx, top, base, cfg, plan); err != nil || next != plan || plan.NumericRepairCount() != 2 {
			continue
		}
		return top, cfg, base, d
	}
	b.Fatal("no always-good path drifts the frontier numerically repairably; fixture unusable")
	return nil, core.Config{}, nil, nil
}

// BenchmarkFrontierMoveRepair measures an epoch solve across a
// frontier-moving always-good drift with the factorization patched in
// place (tier-2, core.Plan.RepairNumeric) against the cold rebuild the
// same drift forces with the option off. The two windows alternate, so
// every repaired iteration patches across a fresh frontier move —
// links leave and re-enter the potentially-congested set each time.
func BenchmarkFrontierMoveRepair(b *testing.B) {
	top, cfg, base, drifted := frontierMoveFixture(b)
	ctx := context.Background()
	stores := []*stream.Window{base, drifted}
	_, plan, err := core.ComputePlanned(ctx, top, base, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("repaired-numeric", func(b *testing.B) {
		// Align the alternation so iteration 0 (base) is itself a
		// frontier move, whatever state the previous b.N run left.
		if _, _, err := core.ComputePlanned(ctx, top, drifted, cfg, plan); err != nil {
			b.Fatal(err)
		}
		before := plan.NumericRepairCount()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ComputePlanned(ctx, top, stores[i%2], cfg, plan); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := plan.NumericRepairCount() - before; got != b.N {
			b.Fatalf("%d of %d iterations were tier-2 repairs", got, b.N)
		}
		b.ReportMetric(float64(plan.NumericRepairCount()), "repairs")
	})
	b.Run("cold-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compute(ctx, top, stores[i%2], cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColdPlanBuild measures the full structural phase — subset
// enumeration, seed rows, augmentation, identifiability reduction and
// QR — from scratch at the Small-sparse scale: the serial build against
// the gang-parallel build at GOMAXPROCS workers. The outputs are
// bit-identical (the metamorphic concurrency suite in internal/core
// pins the full plan across worker counts); only the wall clock and the
// per-build allocation count differ.
func BenchmarkColdPlanBuild(b *testing.B) {
	top, cfg, base, _ := planRepairFixture(b)
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		conc int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := cfg
			c.Concurrency = bc.conc
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ComputePlanned(ctx, top, base, c, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEpochSolveBatch measures draining a lag burst of K window
// checkpoints: K sequential warm epoch solves versus one batched
// multi-RHS solve over the same retained factorization (identical
// results; linalg pins the per-vector arithmetic).
func BenchmarkEpochSolveBatch(b *testing.B) {
	top, cfg, base, _ := planRepairFixture(b)
	ctx := context.Background()
	const K = 8
	checkpoints := make([]observe.Store, K)
	for i := range checkpoints {
		checkpoints[i] = base.Clone()
	}
	_, plan, err := core.ComputePlanned(ctx, top, base, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, w := range checkpoints {
				if _, _, err := core.ComputePlanned(ctx, top, w, cfg, plan); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := core.ComputePlannedBatch(ctx, top, checkpoints, cfg, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQRColumnUpdate measures the incremental QR column updates
// against from-scratch refactorization, the linalg primitives behind
// plan repair's toolkit: AppendCol is bit-identical to the refactor it
// replaces, DeleteCol is the Givens downdate.
func BenchmarkQRColumnUpdate(b *testing.B) {
	const m, n = 300, 100
	rng := rand.New(rand.NewSource(1))
	wide := linalg.NewMatrix(m, n+1)
	for i := range wide.Data {
		if rng.Intn(6) == 0 {
			wide.Data[i] = 1
		}
	}
	narrow := wide.DropCol(n)
	col := wide.Col(n)
	b.Run("append-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := linalg.FactorInPlace(narrow.Clone())
			b.StartTimer()
			f.AppendCol(col)
		}
	})
	b.Run("delete-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := linalg.FactorInPlace(wide.Clone())
			b.StartTimer()
			f.DeleteCol(n / 2)
		}
	})
	b.Run("refactor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.FactorInPlace(wide.Clone())
		}
	})
}

// BenchmarkMetricsObserve pins the telemetry hot path at 0 allocs/op:
// the instrumented ingest/epoch paths observe through pre-resolved
// handles exactly like these, so the bench alloc gate (-allocs-for
// MetricsObserve) guards the whole instrumentation layer.
func BenchmarkMetricsObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("bench_ops_total", "ops")
	gauge := reg.Gauge("bench_depth", "depth")
	hist := reg.Histogram("bench_latency_seconds", "latency", telemetry.ExpBuckets(1e-6, 4, 12))
	child := reg.CounterVec("bench_labeled_total", "labeled ops", "kind").With("hot")
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctr.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gauge.Set(int64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hist.Observe(float64(i%1000) * 1e-6)
		}
	})
	b.Run("vec-child", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			child.Inc()
		}
	})
}
