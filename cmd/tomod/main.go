// Command tomod is the streaming tomography daemon: it ingests
// per-interval path observations over HTTP, continuously recomputes the
// configured estimator's result over a sliding window, and answers
// link-probability, subset-probability and congested-path queries from
// the latest solver epoch.
//
// Serve mode (default):
//
//	tomod -topology topo.json -listen :9900 -window 1000 -recompute 2s \
//	      -algo correlation-complete
//
// The topology JSON is the format written by cmd/topogen and
// topology.WriteJSON; alternatively -gen brite|sparse generates one on
// startup (useful for demos and load tests).
//
// With -algo correlation-complete-sharded the daemon shards by
// correlation-set partition: ingest routes each interval into one ring
// per shard, one solver goroutine per shard recomputes its block on
// independent epochs (warm-starting the null space and factorization
// while the shard's always-good set is stable), and queries are
// answered from a merged snapshot. /v1/status then carries a per-shard
// "shards" array (epoch, seq_high, lag_intervals, warm,
// last_compute_ms).
//
// API (every response in a versioned envelope with machine-readable
// error codes; the estimate-backed endpoints — links and subsets —
// accept ?algo= to select any registered estimator per request):
//
//	POST /v1/observations      {"intervals":[{"congested_paths":[3,17]},...]}
//	GET  /v1/links/{id}        best estimate of P(link congested), with epoch
//	GET  /v1/subsets           correlation-subset good probabilities
//	GET  /v1/subsets/{id}      one subset, with joint congestion probability
//	GET  /v1/estimators        the estimator registry
//	GET  /v1/paths/congested   paths above ?min= congested fraction (observation-level)
//	GET  /v1/status            window fill, epoch, solver lag and stats (+ per-shard, WAL, degraded state)
//	GET  /v1/healthz           liveness probe
//	GET  /v1/readyz            readiness probe (503 not_ready until the first epoch)
//
// With -wal-dir every acknowledged observation batch is appended to a
// checksummed write-ahead log before it is applied; on restart the
// daemon recovers the sliding window from the log (truncating a torn
// tail left by a crash mid-write) and resumes ingest at the recovered
// sequence. -wal-fsync trades durability for latency: batch (sync
// every ack), interval (background sync, default), off.
//
// Load-generator mode drives simulated netsim intervals at a running
// daemon (the topology must be the same file/generation):
//
//	tomod -loadgen -topology topo.json -target http://localhost:9900 \
//	      -intervals 10000 -batch 100 -scenario random
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/topology"
	"repro/internal/wal"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology JSON file (cmd/topogen format)")
		gen       = flag.String("gen", "", "generate a topology instead: brite or sparse")
		scaleName = flag.String("scale", "small", "generated-topology scale: small, medium, or paper")
		genSeed   = flag.Int64("genseed", 1, "generated-topology seed")

		listen      = flag.String("listen", ":9900", "serve: HTTP listen address")
		window      = flag.Int("window", 1000, "serve: sliding-window capacity in intervals")
		recompute   = flag.Duration("recompute", 2*time.Second, "serve: solver recompute cadence")
		algo        = flag.String("algo", estimator.CorrelationComplete, "serve: epoch estimator (see /v1/estimators)")
		concurrency = flag.Int("concurrency", 0, "serve: solver workers per epoch (0/-1 = all CPUs, 1 = serial)")
		maxSubset   = flag.Int("maxsubset", 2, "serve: Correlation-complete max subset size")
		tol         = flag.Float64("tol", 0.02, "serve: always-good congested-fraction tolerance")
		epochEvery  = flag.Int("epoch-every", 0, "serve: also publish one epoch per N ingested intervals (0 = time-based only; unsharded algos)")

		walDir      = flag.String("wal-dir", "", "serve: write-ahead log directory for durable ingest (empty = no durability)")
		walFsync    = flag.String("wal-fsync", "interval", "serve: WAL fsync policy: batch, interval, or off")
		walEvery    = flag.Duration("wal-fsync-every", 100*time.Millisecond, "serve: background fsync cadence with -wal-fsync=interval")
		walSegBytes = flag.Int64("wal-segment-bytes", 8<<20, "serve: WAL segment rotation size")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "serve: http.Server ReadHeaderTimeout (slowloris guard)")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "serve: http.Server ReadTimeout (whole request, incl. body)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "serve: http.Server IdleTimeout for keep-alive connections")

		loadgen   = flag.Bool("loadgen", false, "run as load generator instead of serving")
		target    = flag.String("target", "http://localhost:9900", "loadgen: base URL of the daemon")
		intervals = flag.Int("intervals", 10000, "loadgen: intervals to simulate and send")
		batch     = flag.Int("batch", 100, "loadgen: intervals per POST")
		scenario  = flag.String("scenario", "random", "loadgen: congestion scenario: random, concentrated, or noindep")
		packets   = flag.Int("packets", 1000, "loadgen: probe packets per path per interval")
		perfect   = flag.Bool("perfect", false, "loadgen: perfect E2E monitoring (skip probe sampling)")
		simSeed   = flag.Int64("seed", 1, "loadgen: simulation seed")
	)
	flag.Parse()

	top, err := loadTopology(*topoPath, *gen, *scaleName, *genSeed)
	if err != nil {
		log.Fatalf("tomod: %v", err)
	}
	log.Printf("topology: %d links, %d paths, %d correlation sets",
		top.NumLinks(), top.NumPaths(), len(top.CorrSets))

	if *loadgen {
		scen, err := parseScenario(*scenario)
		if err != nil {
			log.Fatalf("tomod: %v", err)
		}
		simCfg := netsim.DefaultConfig(scen)
		simCfg.PacketsPerPath = *packets
		simCfg.PerfectE2E = *perfect
		if err := runLoadGen(top, server.LoadConfig{
			Target:    *target,
			Intervals: *intervals,
			BatchSize: *batch,
			Seed:      *simSeed,
			Sim:       simCfg,
		}); err != nil {
			log.Fatalf("tomod: %v", err)
		}
		return
	}

	cfg := server.Config{
		WindowSize:     *window,
		RecomputeEvery: *recompute,
		Algo:           *algo,
		EpochEvery:     *epochEvery,
		SolverOpts: []estimator.Option{
			estimator.WithMaxSubsetSize(*maxSubset),
			estimator.WithAlwaysGoodTol(*tol),
			estimator.WithConcurrency(*concurrency),
		},
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("tomod: %v", err)
		}
		cfg.WAL = wal.Options{
			Dir:          *walDir,
			Policy:       policy,
			SyncEvery:    *walEvery,
			SegmentBytes: *walSegBytes,
		}
	}
	timeouts := httpTimeouts{
		readHeader: *readHeaderTimeout,
		read:       *readTimeout,
		idle:       *idleTimeout,
	}
	if err := serve(top, cfg, *listen, timeouts); err != nil {
		log.Fatalf("tomod: %v", err)
	}
}

// httpTimeouts bounds how long a client may hold a connection: without
// them one slow-written request (or an idle keep-alive pool) can pin
// server goroutines indefinitely.
type httpTimeouts struct {
	readHeader time.Duration
	read       time.Duration
	idle       time.Duration
}

// loadTopology reads the topology file, or generates one when -gen is
// set.
func loadTopology(path, gen, scaleName string, seed int64) (*topology.Topology, error) {
	switch {
	case path != "" && gen != "":
		return nil, fmt.Errorf("-topology and -gen are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.ReadJSON(f)
	case gen != "":
		var kind experiment.TopologyKind
		switch gen {
		case "brite":
			kind = experiment.Brite
		case "sparse":
			kind = experiment.Sparse
		default:
			return nil, fmt.Errorf("unknown -gen %q (want brite or sparse)", gen)
		}
		var scale experiment.Scale
		switch scaleName {
		case "small":
			scale = experiment.Small()
		case "medium":
			scale = experiment.Medium()
		case "paper":
			scale = experiment.Paper()
		default:
			return nil, fmt.Errorf("unknown -scale %q", scaleName)
		}
		return experiment.BuildTopology(kind, scale, seed)
	default:
		return nil, fmt.Errorf("either -topology or -gen is required")
	}
}

// serve runs the streaming service until SIGINT/SIGTERM, then shuts
// down gracefully: stop accepting connections, stop the solver loop.
func serve(top *topology.Topology, cfg server.Config, listen string, timeouts httpTimeouts) error {
	s, err := server.New(top, cfg)
	if err != nil {
		return err
	}
	if _, rec, ok := s.WALStats(); ok {
		log.Printf("wal: recovered %d records (%d intervals, seq %d..%d, %d torn bytes truncated) from %s",
			rec.Records, rec.Intervals, rec.FirstSeq, rec.LastSeq, rec.TruncatedBytes, cfg.WAL.Dir)
	}
	s.Start()
	defer s.Close()

	httpSrv := &http.Server{
		Addr:              listen,
		Handler:           s.Handler(),
		ReadHeaderTimeout: timeouts.readHeader,
		ReadTimeout:       timeouts.read,
		IdleTimeout:       timeouts.idle,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (window %d intervals, recompute every %v)",
			listen, cfg.WindowSize, cfg.RecomputeEvery)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	return nil
}

// runLoadGen drives the simulator at the target and prints throughput
// plus the daemon's final status.
func runLoadGen(top *topology.Topology, cfg server.LoadConfig) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	log.Printf("driving %d intervals at %s (batch %d)", cfg.Intervals, cfg.Target, cfg.BatchSize)
	stats, err := server.RunLoadGen(ctx, top, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("sent %d intervals in %d batches over %.2fs (%.0f intervals/s)\n",
		stats.Intervals, stats.Batches, stats.Elapsed.Seconds(), stats.IntervalsPerSec())

	resp, err := http.Get(strings.TrimSuffix(cfg.Target, "/") + "/v1/status")
	if err != nil {
		return fmt.Errorf("fetching final status: %w", err)
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return fmt.Errorf("decoding final status: %w", err)
	}
	if env.Error != nil {
		return fmt.Errorf("final status: %s: %s", env.Error.Code, env.Error.Message)
	}
	out, _ := json.MarshalIndent(json.RawMessage(env.Data), "", "  ")
	fmt.Printf("server status: %s\n", out)
	return nil
}

func parseScenario(name string) (netsim.Scenario, error) {
	switch name {
	case "random":
		return netsim.RandomCongestion, nil
	case "concentrated":
		return netsim.ConcentratedCongestion, nil
	case "noindep":
		return netsim.NoIndependence, nil
	default:
		return 0, fmt.Errorf("unknown -scenario %q (want random, concentrated, or noindep)", name)
	}
}
