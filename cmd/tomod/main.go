// Command tomod is the streaming tomography daemon: it ingests
// per-interval path observations over HTTP, continuously recomputes the
// configured estimator's result over a sliding window, and answers
// link-probability, subset-probability and congested-path queries from
// the latest solver epoch.
//
// Serve mode (default):
//
//	tomod -topology topo.json -listen :9900 -window 1000 -recompute 2s \
//	      -algo correlation-complete
//
// The topology JSON is the format written by cmd/topogen and
// topology.WriteJSON; alternatively -gen brite|sparse generates one on
// startup (useful for demos and load tests).
//
// With -algo correlation-complete-sharded the daemon shards by
// correlation-set partition: ingest routes each interval into one ring
// per shard, one solver goroutine per shard recomputes its block on
// independent epochs (warm-starting the null space and factorization
// while the shard's always-good set is stable), and queries are
// answered from a merged snapshot. /v1/status then carries a per-shard
// "shards" array (epoch, seq_high, lag_intervals, warm,
// last_compute_ms).
//
// API (every response in a versioned envelope with machine-readable
// error codes; the estimate-backed endpoints — links and subsets —
// accept ?algo= to select any registered estimator per request):
//
//	POST /v1/observations      {"intervals":[{"congested_paths":[3,17]},...]}
//	GET  /v1/links/{id}        best estimate of P(link congested), with epoch
//	GET  /v1/subsets           correlation-subset good probabilities
//	GET  /v1/subsets/{id}      one subset, with joint congestion probability
//	GET  /v1/estimators        the estimator registry
//	GET  /v1/paths/congested   paths above ?min= congested fraction (observation-level)
//	GET  /v1/status            window fill, epoch, solver lag and stats (+ per-shard, WAL, degraded state)
//	GET  /v1/healthz           liveness probe
//	GET  /v1/readyz            readiness probe (503 with a reason until the first epoch or while degraded)
//	GET  /metrics              Prometheus text exposition (HTTP, ingest, WAL, solver)
//
// Logs are structured (log/slog): -log-format text|json and
// -log-level debug|info|warn|error. SIGHUP logs a snapshot of the
// metric totals. -pprof mounts net/http/pprof on the main listener;
// -debug-addr starts a separate debug listener carrying pprof and
// /metrics (useful to keep profiling off the public port).
//
// With -wal-dir every acknowledged observation batch is appended to a
// checksummed write-ahead log before it is applied; on restart the
// daemon recovers the sliding window from the log (truncating a torn
// tail left by a crash mid-write) and resumes ingest at the recovered
// sequence. -wal-fsync trades durability for latency: batch (sync
// every ack), interval (background sync, default), off.
//
// Cluster mode splits the sharded daemon across processes along the
// correlation-set partition seam. Workers own disjoint shard sets
// (rings, warm plans, per-shard WALs under -wal-dir/shard-<k>) and
// serve the internal /c1/* API; the coordinator owns the public /v1/*
// surface, fans ingest out to the fleet, and merges per-shard blocks —
// bit-identical to a single sharded process over the same intervals:
//
//	tomod -role worker -topology topo.json -listen :9101 -wal-dir w0-wal
//	tomod -role worker -topology topo.json -listen :9102 -wal-dir w1-wal
//	tomod -role coordinator -topology topo.json -listen :9900 \
//	      -peers http://127.0.0.1:9101,http://127.0.0.1:9102
//
// Shard k lives on peer k mod N (peer order is the placement, so keep
// -peers stable across coordinator restarts). While any worker is
// unreachable, ingest answers 503 shard_unavailable and queries serve
// the last merged snapshot; a restarted worker replays its per-shard
// WALs and the coordinator streams it the missed suffix before ingest
// resumes. /v1/status carries the per-worker placement and health.
//
// Load-generator mode drives simulated netsim intervals at a running
// daemon (the topology must be the same file/generation):
//
//	tomod -loadgen -topology topo.json -target http://localhost:9900 \
//	      -intervals 10000 -batch 100 -scenario random
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wal"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology JSON file (cmd/topogen format)")
		gen       = flag.String("gen", "", "generate a topology instead: brite or sparse")
		scaleName = flag.String("scale", "small", "generated-topology scale: small, medium, or paper")
		genSeed   = flag.Int64("genseed", 1, "generated-topology seed")

		listen      = flag.String("listen", ":9900", "serve: HTTP listen address")
		role        = flag.String("role", "standalone", "serve: process role: standalone, coordinator, or worker")
		peers       = flag.String("peers", "", "coordinator: comma-separated worker base URLs; shard k lives on peer k mod N")
		workerID    = flag.String("worker-id", "", "worker: placement identity to enforce (empty = adopt the coordinator's)")
		window      = flag.Int("window", 1000, "serve: sliding-window capacity in intervals")
		recompute   = flag.Duration("recompute", 2*time.Second, "serve: solver recompute cadence")
		algo        = flag.String("algo", estimator.CorrelationComplete, "serve: epoch estimator (see /v1/estimators)")
		concurrency = flag.Int("concurrency", 0, "serve: solver workers per epoch (0/-1 = all CPUs, 1 = serial)")
		maxSubset   = flag.Int("maxsubset", 2, "serve: Correlation-complete max subset size")
		tol         = flag.Float64("tol", 0.02, "serve: always-good congested-fraction tolerance")
		numRepair   = flag.Bool("numerical-plan-repair", false, "serve: enable tier-2 numerical plan repair across good-link frontier moves (numerically, not bitwise, equivalent to a rebuild)")
		epochEvery  = flag.Int("epoch-every", 0, "serve: also publish one epoch per N ingested intervals (0 = time-based only)")

		walDir      = flag.String("wal-dir", "", "serve: write-ahead log directory for durable ingest (empty = no durability)")
		walFsync    = flag.String("wal-fsync", "interval", "serve: WAL fsync policy: batch, interval, or off")
		walEvery    = flag.Duration("wal-fsync-every", 100*time.Millisecond, "serve: background fsync cadence with -wal-fsync=interval")
		walSegBytes = flag.Int64("wal-segment-bytes", 8<<20, "serve: WAL segment rotation size")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "serve: http.Server ReadHeaderTimeout (slowloris guard)")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "serve: http.Server ReadTimeout (whole request, incl. body)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "serve: http.Server IdleTimeout for keep-alive connections")

		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		pprofOn   = flag.Bool("pprof", false, "serve: mount net/http/pprof under /debug/pprof/ on the main listener")
		debugAddr = flag.String("debug-addr", "", "serve: separate listen address for pprof and /metrics (implies profiling regardless of -pprof)")

		loadgen   = flag.Bool("loadgen", false, "run as load generator instead of serving")
		target    = flag.String("target", "http://localhost:9900", "loadgen: base URL of the daemon")
		intervals = flag.Int("intervals", 10000, "loadgen: intervals to simulate and send")
		batch     = flag.Int("batch", 100, "loadgen: intervals per POST")
		scenario  = flag.String("scenario", "random", "loadgen: congestion scenario: random, concentrated, or noindep")
		packets   = flag.Int("packets", 1000, "loadgen: probe packets per path per interval")
		perfect   = flag.Bool("perfect", false, "loadgen: perfect E2E monitoring (skip probe sampling)")
		simSeed   = flag.Int64("seed", 1, "loadgen: simulation seed")
	)
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tomod: %v\n", err)
		os.Exit(1)
	}
	// Process-wide default: the server package logs through its
	// Config.Logger, but stray library logs should match too.
	slog.SetDefault(logger)

	top, err := loadTopology(*topoPath, *gen, *scaleName, *genSeed)
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("topology loaded",
		"links", top.NumLinks(), "paths", top.NumPaths(), "corr_sets", len(top.CorrSets))

	if *loadgen {
		scen, err := parseScenario(*scenario)
		if err != nil {
			fatal(logger, err)
		}
		simCfg := netsim.DefaultConfig(scen)
		simCfg.PacketsPerPath = *packets
		simCfg.PerfectE2E = *perfect
		if err := runLoadGen(logger, top, server.LoadConfig{
			Target:    *target,
			Intervals: *intervals,
			BatchSize: *batch,
			Seed:      *simSeed,
			Sim:       simCfg,
		}); err != nil {
			fatal(logger, err)
		}
		return
	}

	switch *role {
	case "standalone", "coordinator", "worker":
	default:
		fatal(logger, fmt.Errorf("unknown -role %q (want standalone, coordinator, or worker)", *role))
	}

	if *role == "worker" {
		wk := cluster.NewWorker(cluster.WorkerConfig{
			ID:       *workerID,
			Topology: top,
			WALDir:   *walDir,
			Logger:   logger,
		})
		defer wk.Close()
		logger.Info("starting worker",
			"listen", *listen, "worker_id", *workerID, "wal_dir", *walDir)
		if err := runHTTP(logger, wk.Handler(), serveOpts{
			listen:    *listen,
			debugAddr: *debugAddr,
			pprof:     *pprofOn,
			timeouts: httpTimeouts{
				readHeader: *readHeaderTimeout,
				read:       *readTimeout,
				idle:       *idleTimeout,
			},
		}); err != nil {
			fatal(logger, err)
		}
		return
	}

	cfg := server.Config{
		WindowSize:     *window,
		RecomputeEvery: *recompute,
		Algo:           *algo,
		EpochEvery:     *epochEvery,
		Logger:         logger,
		SolverOpts: []estimator.Option{
			estimator.WithMaxSubsetSize(*maxSubset),
			estimator.WithAlwaysGoodTol(*tol),
			estimator.WithConcurrency(*concurrency),
			estimator.WithNumericalPlanRepair(*numRepair),
		},
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			fatal(logger, err)
		}
		cfg.WAL = wal.Options{
			Dir:          *walDir,
			Policy:       policy,
			SyncEvery:    *walEvery,
			SegmentBytes: *walSegBytes,
		}
	}
	if *role == "coordinator" {
		specs, err := parsePeers(*peers)
		if err != nil {
			fatal(logger, err)
		}
		// Cluster scatter-gather exists only along the partition seam:
		// reject an explicitly conflicting -algo, default the rest.
		algoSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				algoSet = true
			}
		})
		if algoSet && cfg.Algo != estimator.CorrelationCompleteSharded {
			fatal(logger, fmt.Errorf("-role coordinator requires -algo %s (got %q)",
				estimator.CorrelationCompleteSharded, cfg.Algo))
		}
		cfg.Algo = estimator.CorrelationCompleteSharded
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Topology:   top,
			Workers:    specs,
			WindowSize: cfg.WindowSize,
			SolverOpts: cfg.SolverOpts,
			Logger:     logger,
		})
		if err != nil {
			fatal(logger, err)
		}
		cfg.Backend = coord
	}
	timeouts := httpTimeouts{
		readHeader: *readHeaderTimeout,
		read:       *readTimeout,
		idle:       *idleTimeout,
	}
	// One startup line with the effective configuration, so a log scrape
	// answers "what was this instance actually running with".
	goVersion, revision := server.BuildInfo()
	logger.Info("starting",
		"listen", *listen,
		"role", *role,
		"peers", *peers,
		"debug_addr", *debugAddr,
		"pprof", *pprofOn || *debugAddr != "",
		"algo", cfg.Algo,
		"window", cfg.WindowSize,
		"recompute", cfg.RecomputeEvery.String(),
		"epoch_every", cfg.EpochEvery,
		"max_subset", *maxSubset,
		"tol", *tol,
		"concurrency", *concurrency,
		"wal_dir", *walDir,
		"wal_fsync", *walFsync,
		"log_format", *logFormat,
		"log_level", *logLevel,
		"go_version", goVersion,
		"revision", revision,
	)
	if err := serve(logger, top, cfg, serveOpts{
		listen:    *listen,
		debugAddr: *debugAddr,
		pprof:     *pprofOn,
		timeouts:  timeouts,
	}); err != nil {
		fatal(logger, err)
	}
}

// fatal logs the error and exits nonzero; the slog replacement for
// log.Fatalf.
func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags.
func buildLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// httpTimeouts bounds how long a client may hold a connection: without
// them one slow-written request (or an idle keep-alive pool) can pin
// server goroutines indefinitely.
type httpTimeouts struct {
	readHeader time.Duration
	read       time.Duration
	idle       time.Duration
}

// loadTopology reads the topology file, or generates one when -gen is
// set.
func loadTopology(path, gen, scaleName string, seed int64) (*topology.Topology, error) {
	switch {
	case path != "" && gen != "":
		return nil, fmt.Errorf("-topology and -gen are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.ReadJSON(f)
	case gen != "":
		var kind experiment.TopologyKind
		switch gen {
		case "brite":
			kind = experiment.Brite
		case "sparse":
			kind = experiment.Sparse
		default:
			return nil, fmt.Errorf("unknown -gen %q (want brite or sparse)", gen)
		}
		var scale experiment.Scale
		switch scaleName {
		case "small":
			scale = experiment.Small()
		case "medium":
			scale = experiment.Medium()
		case "paper":
			scale = experiment.Paper()
		default:
			return nil, fmt.Errorf("unknown -scale %q", scaleName)
		}
		return experiment.BuildTopology(kind, scale, seed)
	default:
		return nil, fmt.Errorf("either -topology or -gen is required")
	}
}

// serveOpts carries the listener layout: the public address, an
// optional separate debug address (pprof + /metrics), and whether to
// expose pprof on the public listener.
type serveOpts struct {
	listen    string
	debugAddr string
	pprof     bool
	timeouts  httpTimeouts
}

// serve runs the streaming service until SIGINT/SIGTERM, then shuts
// down gracefully: stop accepting connections, stop the solver loop.
// SIGHUP logs a snapshot of the metric totals without interrupting
// service.
func serve(logger *slog.Logger, top *topology.Topology, cfg server.Config, opts serveOpts) error {
	s, err := server.New(top, cfg)
	if err != nil {
		return err
	}
	s.Start()
	defer s.Close()
	return runHTTP(logger, s.Handler(), opts)
}

// runHTTP serves handler on the configured listeners until
// SIGINT/SIGTERM, with the optional debug listener and SIGHUP metric
// snapshots; serve mode and worker mode share it.
func runHTTP(logger *slog.Logger, handler http.Handler, opts serveOpts) error {
	if opts.pprof && opts.debugAddr == "" {
		// Profiling on the public listener: explicit opt-in only.
		mux := http.NewServeMux()
		mountPprof(mux)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              opts.listen,
		Handler:           handler,
		ReadHeaderTimeout: opts.timeouts.readHeader,
		ReadTimeout:       opts.timeouts.read,
		IdleTimeout:       opts.timeouts.idle,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			logMetricTotals(logger)
		}
	}()

	errc := make(chan error, 2)
	var debugSrv *http.Server
	if opts.debugAddr != "" {
		mux := http.NewServeMux()
		mountPprof(mux)
		mux.Handle("GET /metrics", telemetry.Handler(telemetry.Default()))
		debugSrv = &http.Server{
			Addr:              opts.debugAddr,
			Handler:           mux,
			ReadHeaderTimeout: opts.timeouts.readHeader,
		}
		go func() {
			logger.Info("debug listener", "addr", opts.debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
	}
	go func() {
		logger.Info("listening", "addr", opts.listen)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if debugSrv != nil {
		debugSrv.Shutdown(shutCtx)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	return nil
}

// parsePeers splits the -peers list into worker specs; peer order is
// the shard placement, so the same list must be passed across
// coordinator restarts.
func parsePeers(peers string) ([]cluster.WorkerSpec, error) {
	var specs []cluster.WorkerSpec
	for _, addr := range strings.Split(peers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		specs = append(specs, cluster.WorkerSpec{Addr: addr})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-role coordinator requires -peers (comma-separated worker URLs)")
	}
	return specs, nil
}

// mountPprof registers the net/http/pprof handlers on mux. Explicit
// registration (rather than the package's init-time DefaultServeMux
// side effect) keeps profiling strictly opt-in.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// logMetricTotals writes one log line per metric family summing its
// series — the SIGHUP "where are the counters" snapshot for operators
// without a scraper attached.
func logMetricTotals(logger *slog.Logger) {
	snap := telemetry.Default().Snapshot()
	totals := make(map[string]float64)
	for key, v := range snap {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// Histogram series: keep only the family's total observation
		// count; buckets and sums would double-count.
		if strings.HasSuffix(name, "_bucket") || strings.HasSuffix(name, "_sum") {
			continue
		}
		totals[name] += v
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	args := make([]any, 0, 2*len(names))
	for _, name := range names {
		args = append(args, name, totals[name])
	}
	logger.Info("metrics snapshot", args...)
}

// runLoadGen drives the simulator at the target and prints throughput
// plus the daemon's final status.
func runLoadGen(logger *slog.Logger, top *topology.Topology, cfg server.LoadConfig) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	logger.Info("driving load",
		"intervals", cfg.Intervals, "target", cfg.Target, "batch", cfg.BatchSize)
	stats, err := server.RunLoadGen(ctx, top, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("sent %d intervals in %d batches over %.2fs (%.0f intervals/s)\n",
		stats.Intervals, stats.Batches, stats.Elapsed.Seconds(), stats.IntervalsPerSec())

	resp, err := http.Get(strings.TrimSuffix(cfg.Target, "/") + "/v1/status")
	if err != nil {
		return fmt.Errorf("fetching final status: %w", err)
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return fmt.Errorf("decoding final status: %w", err)
	}
	if env.Error != nil {
		return fmt.Errorf("final status: %s: %s", env.Error.Code, env.Error.Message)
	}
	out, _ := json.MarshalIndent(json.RawMessage(env.Data), "", "  ")
	fmt.Printf("server status: %s\n", out)
	return nil
}

func parseScenario(name string) (netsim.Scenario, error) {
	switch name {
	case "random":
		return netsim.RandomCongestion, nil
	case "concentrated":
		return netsim.ConcentratedCongestion, nil
	case "noindep":
		return netsim.NoIndependence, nil
	default:
		return 0, fmt.Errorf("unknown -scenario %q (want random, concentrated, or noindep)", name)
	}
}
