// Command tomo regenerates the paper's evaluation artifacts: Table 2
// and every panel of Figures 3 and 4.
//
// Usage:
//
//	tomo [flags] <artifact>
//
// where artifact is one of: table2, figure3, figure4a, figure4b,
// figure4c, figure4d, all.
//
// Flags:
//
//	-scale small|medium|paper   experiment scale (default medium)
//	-seed N                     master random seed (default 1)
//	-tol F                      always-good tolerance (default 0.02)
//	-maxsubset K                Correlation-complete subset-size knob (default 2)
//	-workers N                  parallel trial workers; output is bit-identical
//	                            to serial (default 0 = all CPUs, 1 = serial)
//	-concurrency N              solver workers inside each trial; output is
//	                            bit-identical to serial (default 0: all CPUs
//	                            when trials are serial, else serial; 1 = serial,
//	                            -1 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	scaleName := flag.String("scale", "medium", "experiment scale: small, medium, or paper")
	seed := flag.Int64("seed", 1, "master random seed")
	tol := flag.Float64("tol", 0.02, "always-good congested-fraction tolerance")
	maxSubset := flag.Int("maxsubset", 2, "Correlation-complete max subset size (the paper's resource knob)")
	workers := flag.Int("workers", 0, "parallel trial workers (0/-1 = all CPUs, 1 = serial); output is bit-identical to serial")
	concurrency := flag.Int("concurrency", 0, "solver workers inside each trial (0 = auto, 1 = serial, -1 = all CPUs); output is bit-identical to serial")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	var scale experiment.Scale
	switch *scaleName {
	case "small":
		scale = experiment.Small()
	case "medium":
		scale = experiment.Medium()
	case "paper":
		scale = experiment.Paper()
	default:
		fmt.Fprintf(os.Stderr, "tomo: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	cfg := experiment.Config{
		Scale:         scale,
		Seed:          *seed,
		AlwaysGoodTol: *tol,
		MaxSubsetSize: *maxSubset,
		Workers:       *workers,
		Concurrency:   *concurrency,
	}

	artifact := flag.Arg(0)
	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "tomo: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	artifacts := map[string]func() error{
		"table2": func() error {
			fmt.Print(experiment.RenderTable2())
			return nil
		},
		"figure3": func() error {
			rows, err := experiment.Figure3(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFigure3(rows))
			return nil
		},
		"figure4a": func() error {
			rows, err := experiment.Figure4(cfg, experiment.Brite)
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFigure4(rows, experiment.Brite))
			return nil
		},
		"figure4b": func() error {
			rows, err := experiment.Figure4(cfg, experiment.Sparse)
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFigure4(rows, experiment.Sparse))
			return nil
		},
		"figure4c": func() error {
			points := cdfPoints()
			curves, err := experiment.Figure4CDF(cfg, points)
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFigure4CDF(points, curves))
			return nil
		},
		"figure4d": func() error {
			cells, err := experiment.Figure4Subsets(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFigure4d(cells))
			return nil
		},
	}
	if artifact == "all" {
		for _, name := range []string{"table2", "figure3", "figure4a", "figure4b", "figure4c", "figure4d"} {
			run(name, artifacts[name])
		}
		return
	}
	f, ok := artifacts[artifact]
	if !ok {
		usage()
		os.Exit(2)
	}
	run(artifact, f)
}

func cdfPoints() []float64 {
	var pts []float64
	for x := 0.0; x <= 1.0001; x += 0.05 {
		pts = append(pts, x)
	}
	return pts
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tomo [flags] <artifact>

artifacts:
  table2     assumption matrix of the inference algorithms
  figure3    detection / false-positive rates, 5 scenarios (both panels)
  figure4a   mean abs. error of probability computation, Brite
  figure4b   mean abs. error of probability computation, Sparse
  figure4c   CDF of abs. error, No Independence, Sparse
  figure4d   link vs correlation-subset error, Correlation-complete
  all        everything above

flags:
`)
	flag.PrintDefaults()
}
