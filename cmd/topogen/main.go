// Command topogen generates one of the paper's topology families and
// writes it as JSON (readable back with topology.ReadJSON), printing
// summary statistics to stderr.
//
// Usage:
//
//	topogen -kind brite|sparse [-scale small|medium|paper] [-seed N] [-o file]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	kindName := flag.String("kind", "brite", "topology kind: brite or sparse")
	scaleName := flag.String("scale", "medium", "scale: small, medium, or paper")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var kind experiment.TopologyKind
	switch *kindName {
	case "brite":
		kind = experiment.Brite
	case "sparse":
		kind = experiment.Sparse
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kindName)
		os.Exit(2)
	}
	var scale experiment.Scale
	switch *scaleName {
	case "small":
		scale = experiment.Small()
	case "medium":
		scale = experiment.Medium()
	case "paper":
		scale = experiment.Paper()
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	top, err := experiment.BuildTopology(kind, scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := top.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s topology: %d links, %d paths, %d correlation sets, %.2f mean paths/link\n",
		kind, top.NumLinks(), top.NumPaths(), len(top.CorrSets), top.MeanPathsPerLink())
}
