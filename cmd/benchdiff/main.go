// Command benchdiff compares two benchmark snapshots produced by
// `make bench` / `make bench-baseline` (`go test -json -bench` output)
// and prints a per-benchmark delta table for ns/op and allocs/op.
//
// Usage:
//
//	benchdiff [-fail-over PCT] [-allocs-over PCT] [-allocs-for REGEX] BENCH_baseline.json BENCH_fresh.json
//
// By default the comparison is purely informational and always exits 0
// (CI runs it as a reported, non-fatal step: one-shot CI timings are
// too noisy to gate on). With -fail-over N it exits 1 when any
// benchmark's ns/op regressed by more than N percent; with
// -allocs-over N it additionally exits 1 when a benchmark matching
// -allocs-for regressed its allocs/op by more than N percent (allocs
// are deterministic, so this gate is meaningful even on noisy boxes —
// it protects the epoch-solve hot paths' allocation discipline).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchRE matches one benchmark result line of `go test -bench`
// output, e.g.
//
//	BenchmarkGoodCount/columnar-8   9031466   138.1 ns/op   0 B/op   0 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so snapshots from
// machines with different core counts still align.
var benchRE = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// allocsRE extracts the -benchmem allocation count from the same line.
var allocsRE = regexp.MustCompile(` ([0-9.]+(?:e[+-]?\d+)?) allocs/op`)

// measurement is one benchmark's parsed result.
type measurement struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// testEvent is the subset of test2json's event schema we need.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// load parses a snapshot into benchmark name -> measurement. A
// benchmark appearing multiple times keeps its last measurement.
//
// test2json splits one bench-output line across multiple events (the
// name is emitted when the benchmark starts, the measurements when it
// finishes), so the raw stream is reassembled from the Output payloads
// first and the result regex runs over its real lines.
func load(path string) (map[string]measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var raw strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Snapshots are test2json streams, but tolerate raw bench text
		// too so hand-saved output also diffs.
		if line[0] == '{' {
			var ev testEvent
			if err := json.Unmarshal(line, &ev); err == nil && ev.Action == "output" {
				raw.WriteString(ev.Output)
			}
			continue
		}
		raw.Write(line)
		raw.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]measurement{}
	for _, text := range strings.Split(raw.String(), "\n") {
		text = strings.TrimSpace(text)
		m := benchRE.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		meas := measurement{ns: ns}
		if am := allocsRE.FindStringSubmatch(text); am != nil {
			if allocs, err := strconv.ParseFloat(am[1], 64); err == nil {
				meas.allocs, meas.hasAllocs = allocs, true
			}
		}
		out[m[1]] = meas
	}
	return out, nil
}

func human(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit non-zero when any benchmark's ns/op regresses by more than this percent (0 = never fail)")
	allocsOver := flag.Float64("allocs-over", 0, "exit non-zero when a benchmark matching -allocs-for regresses allocs/op by more than this percent (0 = never fail)")
	allocsFor := flag.String("allocs-for", "EpochSolve|PlanRepair|StreamIngest|MetricsObserve", "regexp of benchmarks whose allocs/op are gated by -allocs-over")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-fail-over PCT] [-allocs-over PCT] [-allocs-for REGEX] <baseline> <fresh>\n")
		os.Exit(2)
	}
	allocsGate, err := regexp.Compile(*allocsFor)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -allocs-for: %v\n", err)
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	names := map[string]bool{}
	for n := range base {
		names[n] = true
	}
	for n := range fresh {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	width := 0
	for _, n := range sorted {
		if len(n) > width {
			width = len(n)
		}
	}
	worst := 0.0
	var allocFailures []string
	fmt.Printf("%-*s  %12s  %12s  %8s  %s\n", width, "benchmark", "baseline", "fresh", "delta", "allocs")
	for _, n := range sorted {
		b, inBase := base[n]
		f, inFresh := fresh[n]
		switch {
		case !inBase:
			fmt.Printf("%-*s  %12s  %12s  %8s\n", width, n, "-", human(f.ns), "(new)")
		case !inFresh:
			fmt.Printf("%-*s  %12s  %12s  %8s\n", width, n, human(b.ns), "-", "(gone)")
		default:
			delta := (f.ns - b.ns) / b.ns * 100
			if delta > worst {
				worst = delta
			}
			allocCol := ""
			if b.hasAllocs && f.hasAllocs {
				allocCol = fmt.Sprintf("%.0f → %.0f", b.allocs, f.allocs)
				regressed := (b.allocs == 0 && f.allocs > 0) ||
					(b.allocs > 0 && (f.allocs-b.allocs)/b.allocs*100 > *allocsOver)
				if *allocsOver > 0 && regressed && allocsGate.MatchString(n) {
					allocFailures = append(allocFailures,
						fmt.Sprintf("%s: %.0f → %.0f allocs/op", n, b.allocs, f.allocs))
					allocCol += "  !"
				}
			}
			fmt.Printf("%-*s  %12s  %12s  %+7.1f%%  %s\n", width, n, human(b.ns), human(f.ns), delta, allocCol)
		}
	}
	fail := false
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: worst regression %.1f%% exceeds threshold %.1f%%\n", worst, *failOver)
		fail = true
	}
	for _, msg := range allocFailures {
		fmt.Fprintf(os.Stderr, "benchdiff: allocs/op regression: %s\n", msg)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
